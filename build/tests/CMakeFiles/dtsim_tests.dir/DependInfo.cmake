
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analytic.cc" "tests/CMakeFiles/dtsim_tests.dir/test_analytic.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_analytic.cc.o.d"
  "/root/repo/tests/test_array.cc" "tests/CMakeFiles/dtsim_tests.dir/test_array.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_array.cc.o.d"
  "/root/repo/tests/test_block_cache.cc" "tests/CMakeFiles/dtsim_tests.dir/test_block_cache.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_block_cache.cc.o.d"
  "/root/repo/tests/test_buffer_cache.cc" "tests/CMakeFiles/dtsim_tests.dir/test_buffer_cache.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_buffer_cache.cc.o.d"
  "/root/repo/tests/test_bus.cc" "tests/CMakeFiles/dtsim_tests.dir/test_bus.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_bus.cc.o.d"
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/dtsim_tests.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_controller.cc.o.d"
  "/root/repo/tests/test_cross_validation.cc" "tests/CMakeFiles/dtsim_tests.dir/test_cross_validation.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_cross_validation.cc.o.d"
  "/root/repo/tests/test_disk_params.cc" "tests/CMakeFiles/dtsim_tests.dir/test_disk_params.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_disk_params.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/dtsim_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_file_layout.cc" "tests/CMakeFiles/dtsim_tests.dir/test_file_layout.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_file_layout.cc.o.d"
  "/root/repo/tests/test_for_hdc_interaction.cc" "tests/CMakeFiles/dtsim_tests.dir/test_for_hdc_interaction.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_for_hdc_interaction.cc.o.d"
  "/root/repo/tests/test_fs_bitmap_sweep.cc" "tests/CMakeFiles/dtsim_tests.dir/test_fs_bitmap_sweep.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_fs_bitmap_sweep.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/dtsim_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_hdc_planner.cc" "tests/CMakeFiles/dtsim_tests.dir/test_hdc_planner.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_hdc_planner.cc.o.d"
  "/root/repo/tests/test_hdc_store.cc" "tests/CMakeFiles/dtsim_tests.dir/test_hdc_store.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_hdc_store.cc.o.d"
  "/root/repo/tests/test_layout_bitmap.cc" "tests/CMakeFiles/dtsim_tests.dir/test_layout_bitmap.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_layout_bitmap.cc.o.d"
  "/root/repo/tests/test_logging.cc" "tests/CMakeFiles/dtsim_tests.dir/test_logging.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_logging.cc.o.d"
  "/root/repo/tests/test_mechanism.cc" "tests/CMakeFiles/dtsim_tests.dir/test_mechanism.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_mechanism.cc.o.d"
  "/root/repo/tests/test_mirroring.cc" "tests/CMakeFiles/dtsim_tests.dir/test_mirroring.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_mirroring.cc.o.d"
  "/root/repo/tests/test_prefetcher.cc" "tests/CMakeFiles/dtsim_tests.dir/test_prefetcher.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_prefetcher.cc.o.d"
  "/root/repo/tests/test_replay.cc" "tests/CMakeFiles/dtsim_tests.dir/test_replay.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_replay.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/dtsim_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/dtsim_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/dtsim_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/dtsim_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_seek_model.cc" "tests/CMakeFiles/dtsim_tests.dir/test_seek_model.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_seek_model.cc.o.d"
  "/root/repo/tests/test_segment_cache.cc" "tests/CMakeFiles/dtsim_tests.dir/test_segment_cache.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_segment_cache.cc.o.d"
  "/root/repo/tests/test_server_models.cc" "tests/CMakeFiles/dtsim_tests.dir/test_server_models.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_server_models.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/dtsim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_striping.cc" "tests/CMakeFiles/dtsim_tests.dir/test_striping.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_striping.cc.o.d"
  "/root/repo/tests/test_synthetic.cc" "tests/CMakeFiles/dtsim_tests.dir/test_synthetic.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_synthetic.cc.o.d"
  "/root/repo/tests/test_system_matrix.cc" "tests/CMakeFiles/dtsim_tests.dir/test_system_matrix.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_system_matrix.cc.o.d"
  "/root/repo/tests/test_ticks.cc" "tests/CMakeFiles/dtsim_tests.dir/test_ticks.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_ticks.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/dtsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_victim_cache.cc" "tests/CMakeFiles/dtsim_tests.dir/test_victim_cache.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_victim_cache.cc.o.d"
  "/root/repo/tests/test_zones.cc" "tests/CMakeFiles/dtsim_tests.dir/test_zones.cc.o" "gcc" "tests/CMakeFiles/dtsim_tests.dir/test_zones.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dtsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/dtsim_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hdc/CMakeFiles/dtsim_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtsim_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/dtsim_array.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/dtsim_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dtsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/dtsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dtsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
