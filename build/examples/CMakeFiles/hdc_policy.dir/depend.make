# Empty dependencies file for hdc_policy.
# This may be replaced when dependencies are built.
