file(REMOVE_RECURSE
  "CMakeFiles/hdc_policy.dir/hdc_policy.cpp.o"
  "CMakeFiles/hdc_policy.dir/hdc_policy.cpp.o.d"
  "hdc_policy"
  "hdc_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
