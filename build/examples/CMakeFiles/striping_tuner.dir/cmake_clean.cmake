file(REMOVE_RECURSE
  "CMakeFiles/striping_tuner.dir/striping_tuner.cpp.o"
  "CMakeFiles/striping_tuner.dir/striping_tuner.cpp.o.d"
  "striping_tuner"
  "striping_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striping_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
