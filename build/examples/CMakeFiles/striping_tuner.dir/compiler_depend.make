# Empty compiler generated dependencies file for striping_tuner.
# This may be replaced when dependencies are built.
