# Empty compiler generated dependencies file for dtsim_sim.
# This may be replaced when dependencies are built.
