file(REMOVE_RECURSE
  "libdtsim_sim.a"
)
