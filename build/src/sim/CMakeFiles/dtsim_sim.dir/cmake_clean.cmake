file(REMOVE_RECURSE
  "CMakeFiles/dtsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/dtsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/dtsim_sim.dir/logging.cc.o"
  "CMakeFiles/dtsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/dtsim_sim.dir/rng.cc.o"
  "CMakeFiles/dtsim_sim.dir/rng.cc.o.d"
  "CMakeFiles/dtsim_sim.dir/ticks.cc.o"
  "CMakeFiles/dtsim_sim.dir/ticks.cc.o.d"
  "libdtsim_sim.a"
  "libdtsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
