
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/disk_array.cc" "src/array/CMakeFiles/dtsim_array.dir/disk_array.cc.o" "gcc" "src/array/CMakeFiles/dtsim_array.dir/disk_array.cc.o.d"
  "/root/repo/src/array/striping.cc" "src/array/CMakeFiles/dtsim_array.dir/striping.cc.o" "gcc" "src/array/CMakeFiles/dtsim_array.dir/striping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/dtsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dtsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/dtsim_controller.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
