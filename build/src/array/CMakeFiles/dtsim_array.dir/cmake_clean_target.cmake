file(REMOVE_RECURSE
  "libdtsim_array.a"
)
