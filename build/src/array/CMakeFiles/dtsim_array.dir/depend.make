# Empty dependencies file for dtsim_array.
# This may be replaced when dependencies are built.
