file(REMOVE_RECURSE
  "CMakeFiles/dtsim_array.dir/disk_array.cc.o"
  "CMakeFiles/dtsim_array.dir/disk_array.cc.o.d"
  "CMakeFiles/dtsim_array.dir/striping.cc.o"
  "CMakeFiles/dtsim_array.dir/striping.cc.o.d"
  "libdtsim_array.a"
  "libdtsim_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
