file(REMOVE_RECURSE
  "CMakeFiles/dtsim_core.dir/replay.cc.o"
  "CMakeFiles/dtsim_core.dir/replay.cc.o.d"
  "CMakeFiles/dtsim_core.dir/report.cc.o"
  "CMakeFiles/dtsim_core.dir/report.cc.o.d"
  "CMakeFiles/dtsim_core.dir/runner.cc.o"
  "CMakeFiles/dtsim_core.dir/runner.cc.o.d"
  "CMakeFiles/dtsim_core.dir/system.cc.o"
  "CMakeFiles/dtsim_core.dir/system.cc.o.d"
  "libdtsim_core.a"
  "libdtsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
