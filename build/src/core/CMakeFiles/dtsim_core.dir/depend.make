# Empty dependencies file for dtsim_core.
# This may be replaced when dependencies are built.
