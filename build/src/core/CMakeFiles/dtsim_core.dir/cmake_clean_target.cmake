file(REMOVE_RECURSE
  "libdtsim_core.a"
)
