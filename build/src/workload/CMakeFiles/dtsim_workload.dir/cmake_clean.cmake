file(REMOVE_RECURSE
  "CMakeFiles/dtsim_workload.dir/server_models.cc.o"
  "CMakeFiles/dtsim_workload.dir/server_models.cc.o.d"
  "CMakeFiles/dtsim_workload.dir/synthetic.cc.o"
  "CMakeFiles/dtsim_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/dtsim_workload.dir/trace.cc.o"
  "CMakeFiles/dtsim_workload.dir/trace.cc.o.d"
  "libdtsim_workload.a"
  "libdtsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
