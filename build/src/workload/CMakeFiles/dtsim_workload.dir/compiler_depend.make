# Empty compiler generated dependencies file for dtsim_workload.
# This may be replaced when dependencies are built.
