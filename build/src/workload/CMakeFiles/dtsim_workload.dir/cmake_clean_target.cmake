file(REMOVE_RECURSE
  "libdtsim_workload.a"
)
