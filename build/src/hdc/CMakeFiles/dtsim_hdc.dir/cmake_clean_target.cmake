file(REMOVE_RECURSE
  "libdtsim_hdc.a"
)
