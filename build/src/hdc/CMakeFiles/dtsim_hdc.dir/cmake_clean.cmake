file(REMOVE_RECURSE
  "CMakeFiles/dtsim_hdc.dir/hdc_planner.cc.o"
  "CMakeFiles/dtsim_hdc.dir/hdc_planner.cc.o.d"
  "CMakeFiles/dtsim_hdc.dir/victim_cache.cc.o"
  "CMakeFiles/dtsim_hdc.dir/victim_cache.cc.o.d"
  "libdtsim_hdc.a"
  "libdtsim_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
