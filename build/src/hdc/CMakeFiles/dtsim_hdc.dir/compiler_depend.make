# Empty compiler generated dependencies file for dtsim_hdc.
# This may be replaced when dependencies are built.
