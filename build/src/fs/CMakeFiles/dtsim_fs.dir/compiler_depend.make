# Empty compiler generated dependencies file for dtsim_fs.
# This may be replaced when dependencies are built.
