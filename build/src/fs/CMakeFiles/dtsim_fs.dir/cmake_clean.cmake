file(REMOVE_RECURSE
  "CMakeFiles/dtsim_fs.dir/buffer_cache.cc.o"
  "CMakeFiles/dtsim_fs.dir/buffer_cache.cc.o.d"
  "CMakeFiles/dtsim_fs.dir/coalescer.cc.o"
  "CMakeFiles/dtsim_fs.dir/coalescer.cc.o.d"
  "CMakeFiles/dtsim_fs.dir/file_layout.cc.o"
  "CMakeFiles/dtsim_fs.dir/file_layout.cc.o.d"
  "CMakeFiles/dtsim_fs.dir/prefetcher.cc.o"
  "CMakeFiles/dtsim_fs.dir/prefetcher.cc.o.d"
  "libdtsim_fs.a"
  "libdtsim_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
