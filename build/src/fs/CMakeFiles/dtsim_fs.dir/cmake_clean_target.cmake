file(REMOVE_RECURSE
  "libdtsim_fs.a"
)
