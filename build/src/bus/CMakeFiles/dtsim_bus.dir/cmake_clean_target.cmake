file(REMOVE_RECURSE
  "libdtsim_bus.a"
)
