file(REMOVE_RECURSE
  "CMakeFiles/dtsim_bus.dir/scsi_bus.cc.o"
  "CMakeFiles/dtsim_bus.dir/scsi_bus.cc.o.d"
  "libdtsim_bus.a"
  "libdtsim_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
