# Empty compiler generated dependencies file for dtsim_bus.
# This may be replaced when dependencies are built.
