file(REMOVE_RECURSE
  "CMakeFiles/dtsim_controller.dir/disk_controller.cc.o"
  "CMakeFiles/dtsim_controller.dir/disk_controller.cc.o.d"
  "CMakeFiles/dtsim_controller.dir/layout_bitmap.cc.o"
  "CMakeFiles/dtsim_controller.dir/layout_bitmap.cc.o.d"
  "CMakeFiles/dtsim_controller.dir/scheduler.cc.o"
  "CMakeFiles/dtsim_controller.dir/scheduler.cc.o.d"
  "libdtsim_controller.a"
  "libdtsim_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
