file(REMOVE_RECURSE
  "libdtsim_controller.a"
)
