
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/disk_controller.cc" "src/controller/CMakeFiles/dtsim_controller.dir/disk_controller.cc.o" "gcc" "src/controller/CMakeFiles/dtsim_controller.dir/disk_controller.cc.o.d"
  "/root/repo/src/controller/layout_bitmap.cc" "src/controller/CMakeFiles/dtsim_controller.dir/layout_bitmap.cc.o" "gcc" "src/controller/CMakeFiles/dtsim_controller.dir/layout_bitmap.cc.o.d"
  "/root/repo/src/controller/scheduler.cc" "src/controller/CMakeFiles/dtsim_controller.dir/scheduler.cc.o" "gcc" "src/controller/CMakeFiles/dtsim_controller.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/dtsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dtsim_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
