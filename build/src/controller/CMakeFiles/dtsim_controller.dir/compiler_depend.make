# Empty compiler generated dependencies file for dtsim_controller.
# This may be replaced when dependencies are built.
