file(REMOVE_RECURSE
  "libdtsim_cache.a"
)
