file(REMOVE_RECURSE
  "CMakeFiles/dtsim_cache.dir/block_cache.cc.o"
  "CMakeFiles/dtsim_cache.dir/block_cache.cc.o.d"
  "CMakeFiles/dtsim_cache.dir/hdc_store.cc.o"
  "CMakeFiles/dtsim_cache.dir/hdc_store.cc.o.d"
  "CMakeFiles/dtsim_cache.dir/segment_cache.cc.o"
  "CMakeFiles/dtsim_cache.dir/segment_cache.cc.o.d"
  "libdtsim_cache.a"
  "libdtsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
