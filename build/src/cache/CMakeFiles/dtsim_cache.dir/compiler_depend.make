# Empty compiler generated dependencies file for dtsim_cache.
# This may be replaced when dependencies are built.
