
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_cache.cc" "src/cache/CMakeFiles/dtsim_cache.dir/block_cache.cc.o" "gcc" "src/cache/CMakeFiles/dtsim_cache.dir/block_cache.cc.o.d"
  "/root/repo/src/cache/hdc_store.cc" "src/cache/CMakeFiles/dtsim_cache.dir/hdc_store.cc.o" "gcc" "src/cache/CMakeFiles/dtsim_cache.dir/hdc_store.cc.o.d"
  "/root/repo/src/cache/segment_cache.cc" "src/cache/CMakeFiles/dtsim_cache.dir/segment_cache.cc.o" "gcc" "src/cache/CMakeFiles/dtsim_cache.dir/segment_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/dtsim_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
