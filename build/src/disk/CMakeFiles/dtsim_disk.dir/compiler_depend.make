# Empty compiler generated dependencies file for dtsim_disk.
# This may be replaced when dependencies are built.
