file(REMOVE_RECURSE
  "CMakeFiles/dtsim_disk.dir/geometry.cc.o"
  "CMakeFiles/dtsim_disk.dir/geometry.cc.o.d"
  "CMakeFiles/dtsim_disk.dir/mechanism.cc.o"
  "CMakeFiles/dtsim_disk.dir/mechanism.cc.o.d"
  "CMakeFiles/dtsim_disk.dir/seek_model.cc.o"
  "CMakeFiles/dtsim_disk.dir/seek_model.cc.o.d"
  "CMakeFiles/dtsim_disk.dir/zones.cc.o"
  "CMakeFiles/dtsim_disk.dir/zones.cc.o.d"
  "libdtsim_disk.a"
  "libdtsim_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
