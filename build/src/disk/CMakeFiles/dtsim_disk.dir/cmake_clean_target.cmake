file(REMOVE_RECURSE
  "libdtsim_disk.a"
)
