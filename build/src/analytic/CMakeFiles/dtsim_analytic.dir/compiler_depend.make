# Empty compiler generated dependencies file for dtsim_analytic.
# This may be replaced when dependencies are built.
