file(REMOVE_RECURSE
  "libdtsim_analytic.a"
)
