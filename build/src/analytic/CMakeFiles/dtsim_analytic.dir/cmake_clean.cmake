file(REMOVE_RECURSE
  "CMakeFiles/dtsim_analytic.dir/models.cc.o"
  "CMakeFiles/dtsim_analytic.dir/models.cc.o.d"
  "libdtsim_analytic.a"
  "libdtsim_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
