file(REMOVE_RECURSE
  "libdtsim_stats.a"
)
