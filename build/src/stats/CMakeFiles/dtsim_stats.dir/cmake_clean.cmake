file(REMOVE_RECURSE
  "CMakeFiles/dtsim_stats.dir/stats.cc.o"
  "CMakeFiles/dtsim_stats.dir/stats.cc.o.d"
  "libdtsim_stats.a"
  "libdtsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
