# Empty dependencies file for dtsim_stats.
# This may be replaced when dependencies are built.
