
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cc" "bench/CMakeFiles/validation_microbench.dir/bench_util.cc.o" "gcc" "bench/CMakeFiles/validation_microbench.dir/bench_util.cc.o.d"
  "/root/repo/bench/validation_microbench.cc" "bench/CMakeFiles/validation_microbench.dir/validation_microbench.cc.o" "gcc" "bench/CMakeFiles/validation_microbench.dir/validation_microbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dtsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/dtsim_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hdc/CMakeFiles/dtsim_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/dtsim_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/dtsim_array.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/dtsim_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dtsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/dtsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dtsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
