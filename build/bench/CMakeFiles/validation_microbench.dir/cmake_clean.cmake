file(REMOVE_RECURSE
  "CMakeFiles/validation_microbench.dir/bench_util.cc.o"
  "CMakeFiles/validation_microbench.dir/bench_util.cc.o.d"
  "CMakeFiles/validation_microbench.dir/validation_microbench.cc.o"
  "CMakeFiles/validation_microbench.dir/validation_microbench.cc.o.d"
  "validation_microbench"
  "validation_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
