# Empty dependencies file for validation_microbench.
# This may be replaced when dependencies are built.
