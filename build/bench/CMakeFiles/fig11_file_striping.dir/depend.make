# Empty dependencies file for fig11_file_striping.
# This may be replaced when dependencies are built.
