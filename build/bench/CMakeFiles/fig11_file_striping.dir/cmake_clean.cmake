file(REMOVE_RECURSE
  "CMakeFiles/fig11_file_striping.dir/bench_util.cc.o"
  "CMakeFiles/fig11_file_striping.dir/bench_util.cc.o.d"
  "CMakeFiles/fig11_file_striping.dir/fig11_file_striping.cc.o"
  "CMakeFiles/fig11_file_striping.dir/fig11_file_striping.cc.o.d"
  "fig11_file_striping"
  "fig11_file_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_file_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
