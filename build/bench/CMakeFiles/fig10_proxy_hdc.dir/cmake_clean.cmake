file(REMOVE_RECURSE
  "CMakeFiles/fig10_proxy_hdc.dir/bench_util.cc.o"
  "CMakeFiles/fig10_proxy_hdc.dir/bench_util.cc.o.d"
  "CMakeFiles/fig10_proxy_hdc.dir/fig10_proxy_hdc.cc.o"
  "CMakeFiles/fig10_proxy_hdc.dir/fig10_proxy_hdc.cc.o.d"
  "fig10_proxy_hdc"
  "fig10_proxy_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_proxy_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
