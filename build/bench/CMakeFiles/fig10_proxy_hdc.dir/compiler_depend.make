# Empty compiler generated dependencies file for fig10_proxy_hdc.
# This may be replaced when dependencies are built.
