file(REMOVE_RECURSE
  "CMakeFiles/fig06_writes.dir/bench_util.cc.o"
  "CMakeFiles/fig06_writes.dir/bench_util.cc.o.d"
  "CMakeFiles/fig06_writes.dir/fig06_writes.cc.o"
  "CMakeFiles/fig06_writes.dir/fig06_writes.cc.o.d"
  "fig06_writes"
  "fig06_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
