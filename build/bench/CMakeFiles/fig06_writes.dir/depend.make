# Empty dependencies file for fig06_writes.
# This may be replaced when dependencies are built.
