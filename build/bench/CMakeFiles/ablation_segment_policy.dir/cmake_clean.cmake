file(REMOVE_RECURSE
  "CMakeFiles/ablation_segment_policy.dir/ablation_segment_policy.cc.o"
  "CMakeFiles/ablation_segment_policy.dir/ablation_segment_policy.cc.o.d"
  "CMakeFiles/ablation_segment_policy.dir/bench_util.cc.o"
  "CMakeFiles/ablation_segment_policy.dir/bench_util.cc.o.d"
  "ablation_segment_policy"
  "ablation_segment_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_segment_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
