# Empty dependencies file for ablation_segment_policy.
# This may be replaced when dependencies are built.
