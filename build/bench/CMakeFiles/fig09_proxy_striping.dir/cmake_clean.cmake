file(REMOVE_RECURSE
  "CMakeFiles/fig09_proxy_striping.dir/bench_util.cc.o"
  "CMakeFiles/fig09_proxy_striping.dir/bench_util.cc.o.d"
  "CMakeFiles/fig09_proxy_striping.dir/fig09_proxy_striping.cc.o"
  "CMakeFiles/fig09_proxy_striping.dir/fig09_proxy_striping.cc.o.d"
  "fig09_proxy_striping"
  "fig09_proxy_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_proxy_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
