# Empty dependencies file for fig09_proxy_striping.
# This may be replaced when dependencies are built.
