# Empty compiler generated dependencies file for fig07_web_striping.
# This may be replaced when dependencies are built.
