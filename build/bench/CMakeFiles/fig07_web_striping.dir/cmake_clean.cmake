file(REMOVE_RECURSE
  "CMakeFiles/fig07_web_striping.dir/bench_util.cc.o"
  "CMakeFiles/fig07_web_striping.dir/bench_util.cc.o.d"
  "CMakeFiles/fig07_web_striping.dir/fig07_web_striping.cc.o"
  "CMakeFiles/fig07_web_striping.dir/fig07_web_striping.cc.o.d"
  "fig07_web_striping"
  "fig07_web_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_web_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
