file(REMOVE_RECURSE
  "CMakeFiles/fig03_filesize.dir/bench_util.cc.o"
  "CMakeFiles/fig03_filesize.dir/bench_util.cc.o.d"
  "CMakeFiles/fig03_filesize.dir/fig03_filesize.cc.o"
  "CMakeFiles/fig03_filesize.dir/fig03_filesize.cc.o.d"
  "fig03_filesize"
  "fig03_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
