# Empty dependencies file for fig03_filesize.
# This may be replaced when dependencies are built.
