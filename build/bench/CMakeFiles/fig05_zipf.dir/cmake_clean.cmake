file(REMOVE_RECURSE
  "CMakeFiles/fig05_zipf.dir/bench_util.cc.o"
  "CMakeFiles/fig05_zipf.dir/bench_util.cc.o.d"
  "CMakeFiles/fig05_zipf.dir/fig05_zipf.cc.o"
  "CMakeFiles/fig05_zipf.dir/fig05_zipf.cc.o.d"
  "fig05_zipf"
  "fig05_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
