# Empty compiler generated dependencies file for fig05_zipf.
# This may be replaced when dependencies are built.
