# Empty compiler generated dependencies file for fig02_popularity.
# This may be replaced when dependencies are built.
