file(REMOVE_RECURSE
  "CMakeFiles/fig02_popularity.dir/bench_util.cc.o"
  "CMakeFiles/fig02_popularity.dir/bench_util.cc.o.d"
  "CMakeFiles/fig02_popularity.dir/fig02_popularity.cc.o"
  "CMakeFiles/fig02_popularity.dir/fig02_popularity.cc.o.d"
  "fig02_popularity"
  "fig02_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
