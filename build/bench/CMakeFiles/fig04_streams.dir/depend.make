# Empty dependencies file for fig04_streams.
# This may be replaced when dependencies are built.
