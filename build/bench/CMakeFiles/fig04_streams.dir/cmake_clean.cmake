file(REMOVE_RECURSE
  "CMakeFiles/fig04_streams.dir/bench_util.cc.o"
  "CMakeFiles/fig04_streams.dir/bench_util.cc.o.d"
  "CMakeFiles/fig04_streams.dir/fig04_streams.cc.o"
  "CMakeFiles/fig04_streams.dir/fig04_streams.cc.o.d"
  "fig04_streams"
  "fig04_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
