# Empty dependencies file for ablation_hdc_policy.
# This may be replaced when dependencies are built.
