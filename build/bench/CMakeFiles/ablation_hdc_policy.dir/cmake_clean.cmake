file(REMOVE_RECURSE
  "CMakeFiles/ablation_hdc_policy.dir/ablation_hdc_policy.cc.o"
  "CMakeFiles/ablation_hdc_policy.dir/ablation_hdc_policy.cc.o.d"
  "CMakeFiles/ablation_hdc_policy.dir/bench_util.cc.o"
  "CMakeFiles/ablation_hdc_policy.dir/bench_util.cc.o.d"
  "ablation_hdc_policy"
  "ablation_hdc_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hdc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
