file(REMOVE_RECURSE
  "CMakeFiles/ablation_zones.dir/ablation_zones.cc.o"
  "CMakeFiles/ablation_zones.dir/ablation_zones.cc.o.d"
  "CMakeFiles/ablation_zones.dir/bench_util.cc.o"
  "CMakeFiles/ablation_zones.dir/bench_util.cc.o.d"
  "ablation_zones"
  "ablation_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
