# Empty compiler generated dependencies file for ablation_zones.
# This may be replaced when dependencies are built.
