file(REMOVE_RECURSE
  "CMakeFiles/fig01_fragmentation.dir/bench_util.cc.o"
  "CMakeFiles/fig01_fragmentation.dir/bench_util.cc.o.d"
  "CMakeFiles/fig01_fragmentation.dir/fig01_fragmentation.cc.o"
  "CMakeFiles/fig01_fragmentation.dir/fig01_fragmentation.cc.o.d"
  "fig01_fragmentation"
  "fig01_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
