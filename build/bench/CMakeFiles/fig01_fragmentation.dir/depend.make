# Empty dependencies file for fig01_fragmentation.
# This may be replaced when dependencies are built.
