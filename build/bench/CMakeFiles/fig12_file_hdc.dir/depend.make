# Empty dependencies file for fig12_file_hdc.
# This may be replaced when dependencies are built.
