file(REMOVE_RECURSE
  "CMakeFiles/fig12_file_hdc.dir/bench_util.cc.o"
  "CMakeFiles/fig12_file_hdc.dir/bench_util.cc.o.d"
  "CMakeFiles/fig12_file_hdc.dir/fig12_file_hdc.cc.o"
  "CMakeFiles/fig12_file_hdc.dir/fig12_file_hdc.cc.o.d"
  "fig12_file_hdc"
  "fig12_file_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_file_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
