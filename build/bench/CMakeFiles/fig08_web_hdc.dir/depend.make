# Empty dependencies file for fig08_web_hdc.
# This may be replaced when dependencies are built.
