file(REMOVE_RECURSE
  "CMakeFiles/fig08_web_hdc.dir/bench_util.cc.o"
  "CMakeFiles/fig08_web_hdc.dir/bench_util.cc.o.d"
  "CMakeFiles/fig08_web_hdc.dir/fig08_web_hdc.cc.o"
  "CMakeFiles/fig08_web_hdc.dir/fig08_web_hdc.cc.o.d"
  "fig08_web_hdc"
  "fig08_web_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_web_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
