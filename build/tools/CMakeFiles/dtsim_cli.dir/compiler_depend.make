# Empty compiler generated dependencies file for dtsim_cli.
# This may be replaced when dependencies are built.
