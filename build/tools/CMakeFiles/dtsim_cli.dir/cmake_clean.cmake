file(REMOVE_RECURSE
  "CMakeFiles/dtsim_cli.dir/dtsim_cli.cc.o"
  "CMakeFiles/dtsim_cli.dir/dtsim_cli.cc.o.d"
  "dtsim_cli"
  "dtsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
