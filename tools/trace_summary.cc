/**
 * @file
 * Trace analyzer: read a request trace written by --trace (binary or
 * JSONL, auto-detected) and print latency percentiles plus a
 * cache-attribution table, the numbers the paper's FOR accuracy and
 * HDC hit-rate discussions rest on. EXPERIMENTS.md shows how its
 * output reconciles with the --stats-out dump of the same run;
 * docs/OBSERVABILITY.md has the full cookbook.
 *
 * Usage: trace_summary [--outliers] [--to-jsonl] FILE [FILE...]
 *
 *   (default)   summary: attribution table, component totals,
 *               latency percentiles up to p99.9
 *   --outliers  tail attribution: where the p99.9+ requests spend
 *               their time and which outcome/disk produces them
 *   --to-jsonl  convert each FILE to JSONL records on stdout (the
 *               export path for external tooling; '#' preamble lines
 *               are not forwarded)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "stats/trace.hh"

using namespace dtsim;

namespace {

/** Per-outcome accumulation. */
struct OutcomeTotals
{
    std::uint64_t requests = 0;
    std::uint64_t blocks = 0;
    Tick latency = 0;
};

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

/** k-th percentile (0-100) of a sorted tick vector, in ticks. */
Tick
percentileTicks(const std::vector<Tick>& sorted, double k)
{
    if (sorted.empty())
        return 0;
    const double rank =
        k / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t i = static_cast<std::size_t>(rank);
    return sorted[std::min(i, sorted.size() - 1)];
}

/** k-th percentile (0-100) of a sorted tick vector, in ms. */
double
percentileMs(const std::vector<Tick>& sorted, double k)
{
    return toMillis(percentileTicks(sorted, k));
}

int
summarize(const std::string& path)
{
    std::vector<RequestTraceEvent> events;
    if (!readTraceFile(path, events))
        return 1;

    std::printf("trace: %s\n", path.c_str());
    if (events.empty()) {
        std::printf("  (empty)\n");
        return 0;
    }

    std::uint64_t blocks = 0;
    std::uint64_t writes = 0;
    OutcomeTotals by_outcome[3];
    Tick queue = 0, seek = 0, rotation = 0, transfer = 0, bus = 0,
         latency = 0;
    std::uint64_t faults = 0, retries = 0;
    std::uint64_t faulted_reqs = 0, degraded_reqs = 0;
    Tick degraded_latency = 0;
    std::vector<Tick> lats;
    lats.reserve(events.size());

    for (const RequestTraceEvent& ev : events) {
        blocks += ev.blocks;
        writes += ev.isWrite ? 1 : 0;
        faults += ev.faults;
        retries += ev.retries;
        faulted_reqs += ev.faults ? 1 : 0;
        if (ev.degraded) {
            ++degraded_reqs;
            degraded_latency += ev.latency;
        }
        OutcomeTotals& o =
            by_outcome[static_cast<std::size_t>(ev.outcome)];
        ++o.requests;
        o.blocks += ev.blocks;
        o.latency += ev.latency;
        queue += ev.queue;
        seek += ev.seek;
        rotation += ev.rotation;
        transfer += ev.transfer;
        bus += ev.bus;
        latency += ev.latency;
        lats.push_back(ev.latency);
    }

    const std::uint64_t n = events.size();
    std::printf("  requests: %llu  blocks: %llu  writes: %.1f%%\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(blocks),
                pct(writes, n));

    std::printf("  served by:  %-10s %-12s %-8s %-12s %s\n",
                "outcome", "requests", "share", "blocks",
                "mean lat(ms)");
    const TraceOutcome outcomes[] = {TraceOutcome::Media,
                                     TraceOutcome::Cache,
                                     TraceOutcome::Hdc};
    for (TraceOutcome oc : outcomes) {
        const OutcomeTotals& o =
            by_outcome[static_cast<std::size_t>(oc)];
        char share[16];
        std::snprintf(share, sizeof(share), "%.1f%%",
                      pct(o.requests, n));
        std::printf("              %-10s %-12llu %-8s %-12llu "
                    "%.3f\n",
                    traceOutcomeName(oc),
                    static_cast<unsigned long long>(o.requests),
                    share,
                    static_cast<unsigned long long>(o.blocks),
                    o.requests ? toMillis(o.latency) /
                                     static_cast<double>(o.requests)
                               : 0.0);
    }

    std::printf("  time (ms):  queue=%.3f seek=%.3f rotation=%.3f "
                "transfer=%.3f bus=%.3f latency=%.3f\n",
                toMillis(queue), toMillis(seek), toMillis(rotation),
                toMillis(transfer), toMillis(bus), toMillis(latency));

    std::sort(lats.begin(), lats.end());
    std::printf("  latency (ms): p50=%.3f p90=%.3f p99=%.3f "
                "p99.9=%.3f max=%.3f mean=%.3f\n",
                percentileMs(lats, 50.0), percentileMs(lats, 90.0),
                percentileMs(lats, 99.0), percentileMs(lats, 99.9),
                toMillis(lats.back()),
                toMillis(latency) / static_cast<double>(n));

    // Fault attribution: which requests paid for media errors or
    // degraded-mode redirection (printed only when any did, so
    // fault-free traces keep their familiar output).
    if (faults || retries || degraded_reqs) {
        std::printf("  faults:     media-errors=%llu retries=%llu "
                    "faulted-reqs=%llu (%.1f%%)\n",
                    static_cast<unsigned long long>(faults),
                    static_cast<unsigned long long>(retries),
                    static_cast<unsigned long long>(faulted_reqs),
                    pct(faulted_reqs, n));
        std::printf("  degraded:   requests=%llu (%.1f%%) mean "
                    "lat(ms)=%.3f\n",
                    static_cast<unsigned long long>(degraded_reqs),
                    pct(degraded_reqs, n),
                    degraded_reqs
                        ? toMillis(degraded_latency) /
                              static_cast<double>(degraded_reqs)
                        : 0.0);
    }
    return 0;
}

/**
 * Tail attribution: isolate the requests at or above the p99.9
 * latency and explain them — which outcome and disks they hit, and
 * how their mean service components compare against the whole trace.
 * This is the production-debugging view: "what do my slowest
 * requests have in common?"
 */
int
outliers(const std::string& path)
{
    std::vector<RequestTraceEvent> events;
    if (!readTraceFile(path, events))
        return 1;

    std::printf("trace: %s\n", path.c_str());
    if (events.empty()) {
        std::printf("  (empty)\n");
        return 0;
    }

    std::vector<Tick> lats;
    lats.reserve(events.size());
    for (const RequestTraceEvent& ev : events)
        lats.push_back(ev.latency);
    std::sort(lats.begin(), lats.end());

    const Tick p999 = percentileTicks(lats, 99.9);
    std::printf("  requests: %llu  p99=%.3f ms  p99.9=%.3f ms  "
                "p99.99=%.3f ms  max=%.3f ms\n",
                static_cast<unsigned long long>(events.size()),
                percentileMs(lats, 99.0), percentileMs(lats, 99.9),
                percentileMs(lats, 99.99), toMillis(lats.back()));

    // Means over the whole trace, for the comparison row.
    Tick aq = 0, as = 0, ar = 0, ax = 0, ab = 0, al = 0;
    for (const RequestTraceEvent& ev : events) {
        aq += ev.queue;
        as += ev.seek;
        ar += ev.rotation;
        ax += ev.transfer;
        ab += ev.bus;
        al += ev.latency;
    }

    // The tail set: everything at or above the p99.9 latency.
    std::uint64_t tn = 0, tn_writes = 0, tn_degraded = 0,
                  tn_faulted = 0;
    Tick tq = 0, ts = 0, tr = 0, tx = 0, tb = 0, tl = 0;
    std::uint64_t by_outcome[3] = {0, 0, 0};
    std::map<std::uint32_t, std::uint64_t> by_disk;
    for (const RequestTraceEvent& ev : events) {
        if (ev.latency < p999)
            continue;
        ++tn;
        tn_writes += ev.isWrite ? 1 : 0;
        tn_degraded += ev.degraded ? 1 : 0;
        tn_faulted += ev.faults ? 1 : 0;
        tq += ev.queue;
        ts += ev.seek;
        tr += ev.rotation;
        tx += ev.transfer;
        tb += ev.bus;
        tl += ev.latency;
        ++by_outcome[static_cast<std::size_t>(ev.outcome)];
        ++by_disk[ev.disk];
    }
    if (tn == 0) {
        std::printf("  (no requests at or above p99.9)\n");
        return 0;
    }

    std::printf("  tail (>= p99.9): %llu requests  writes=%.1f%%  "
                "degraded=%llu  faulted=%llu\n",
                static_cast<unsigned long long>(tn),
                pct(tn_writes, tn),
                static_cast<unsigned long long>(tn_degraded),
                static_cast<unsigned long long>(tn_faulted));

    std::printf("  by outcome: ");
    const TraceOutcome outcomes[] = {TraceOutcome::Media,
                                     TraceOutcome::Cache,
                                     TraceOutcome::Hdc};
    for (TraceOutcome oc : outcomes) {
        const std::uint64_t c =
            by_outcome[static_cast<std::size_t>(oc)];
        std::printf("%s=%llu (%.1f%%)  ", traceOutcomeName(oc),
                    static_cast<unsigned long long>(c), pct(c, tn));
    }
    std::printf("\n");

    std::printf("  by disk:    ");
    for (const auto& [disk, count] : by_disk)
        std::printf("d%u=%llu  ", disk,
                    static_cast<unsigned long long>(count));
    std::printf("\n");

    const double dn = static_cast<double>(tn);
    const double an = static_cast<double>(events.size());
    std::printf("  mean (ms):       %-10s %-10s %-10s %-10s %-10s "
                "%s\n",
                "queue", "seek", "rotation", "transfer", "bus",
                "latency");
    std::printf("    tail request:  %-10.3f %-10.3f %-10.3f %-10.3f "
                "%-10.3f %.3f\n",
                toMillis(tq) / dn, toMillis(ts) / dn,
                toMillis(tr) / dn, toMillis(tx) / dn,
                toMillis(tb) / dn, toMillis(tl) / dn);
    std::printf("    whole trace:   %-10.3f %-10.3f %-10.3f %-10.3f "
                "%-10.3f %.3f\n",
                toMillis(aq) / an, toMillis(as) / an,
                toMillis(ar) / an, toMillis(ax) / an,
                toMillis(ab) / an, toMillis(al) / an);
    return 0;
}

/** Convert a trace (either format) to JSONL records on stdout. */
int
toJsonl(const std::string& path)
{
    std::vector<RequestTraceEvent> events;
    if (!readTraceFile(path, events))
        return 1;
    for (const RequestTraceEvent& ev : events) {
        const std::string line =
            traceRecordToJsonl(packTraceRecord(ev));
        std::fwrite(line.data(), 1, line.size(), stdout);
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    initLogLevelFromEnv();

    bool want_outliers = false;
    bool want_jsonl = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--outliers") == 0)
            want_outliers = true;
        else if (std::strcmp(argv[i], "--to-jsonl") == 0)
            want_jsonl = true;
        else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            return 2;
        } else
            files.push_back(argv[i]);
    }
    if (files.empty() || (want_outliers && want_jsonl)) {
        std::fprintf(stderr, "usage: trace_summary [--outliers] "
                             "[--to-jsonl] FILE [FILE...]\n");
        return 2;
    }

    int rc = 0;
    for (const std::string& f : files) {
        if (want_jsonl)
            rc |= toJsonl(f);
        else if (want_outliers)
            rc |= outliers(f);
        else
            rc |= summarize(f);
    }
    return rc;
}
