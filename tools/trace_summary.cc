/**
 * @file
 * Trace analyzer: read a JSONL request trace written by --trace and
 * print latency percentiles plus a cache-attribution table, the
 * numbers the paper's FOR accuracy and HDC hit-rate discussions rest
 * on. EXPERIMENTS.md shows how its output reconciles with the
 * --stats-out dump of the same run.
 *
 * Usage: trace_summary FILE [FILE...]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "stats/trace.hh"

using namespace dtsim;

namespace {

/** Per-outcome accumulation. */
struct OutcomeTotals
{
    std::uint64_t requests = 0;
    std::uint64_t blocks = 0;
    Tick latency = 0;
};

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

/** k-th percentile (0-100) of a sorted tick vector, in ms. */
double
percentileMs(const std::vector<Tick>& sorted, double k)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        k / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t i = static_cast<std::size_t>(rank);
    return toMillis(sorted[std::min(i, sorted.size() - 1)]);
}

int
summarize(const std::string& path)
{
    std::vector<RequestTraceEvent> events;
    if (!readTraceFile(path, events))
        return 1;

    std::printf("trace: %s\n", path.c_str());
    if (events.empty()) {
        std::printf("  (empty)\n");
        return 0;
    }

    std::uint64_t blocks = 0;
    std::uint64_t writes = 0;
    OutcomeTotals by_outcome[3];
    Tick queue = 0, seek = 0, rotation = 0, transfer = 0, bus = 0,
         latency = 0;
    std::uint64_t faults = 0, retries = 0;
    std::uint64_t faulted_reqs = 0, degraded_reqs = 0;
    Tick degraded_latency = 0;
    std::vector<Tick> lats;
    lats.reserve(events.size());

    for (const RequestTraceEvent& ev : events) {
        blocks += ev.blocks;
        writes += ev.isWrite ? 1 : 0;
        faults += ev.faults;
        retries += ev.retries;
        faulted_reqs += ev.faults ? 1 : 0;
        if (ev.degraded) {
            ++degraded_reqs;
            degraded_latency += ev.latency;
        }
        OutcomeTotals& o =
            by_outcome[static_cast<std::size_t>(ev.outcome)];
        ++o.requests;
        o.blocks += ev.blocks;
        o.latency += ev.latency;
        queue += ev.queue;
        seek += ev.seek;
        rotation += ev.rotation;
        transfer += ev.transfer;
        bus += ev.bus;
        latency += ev.latency;
        lats.push_back(ev.latency);
    }

    const std::uint64_t n = events.size();
    std::printf("  requests: %llu  blocks: %llu  writes: %.1f%%\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(blocks),
                pct(writes, n));

    std::printf("  served by:  %-10s %-12s %-8s %-12s %s\n",
                "outcome", "requests", "share", "blocks",
                "mean lat(ms)");
    const TraceOutcome outcomes[] = {TraceOutcome::Media,
                                     TraceOutcome::Cache,
                                     TraceOutcome::Hdc};
    for (TraceOutcome oc : outcomes) {
        const OutcomeTotals& o =
            by_outcome[static_cast<std::size_t>(oc)];
        char share[16];
        std::snprintf(share, sizeof(share), "%.1f%%",
                      pct(o.requests, n));
        std::printf("              %-10s %-12llu %-8s %-12llu "
                    "%.3f\n",
                    traceOutcomeName(oc),
                    static_cast<unsigned long long>(o.requests),
                    share,
                    static_cast<unsigned long long>(o.blocks),
                    o.requests ? toMillis(o.latency) /
                                     static_cast<double>(o.requests)
                               : 0.0);
    }

    std::printf("  time (ms):  queue=%.3f seek=%.3f rotation=%.3f "
                "transfer=%.3f bus=%.3f latency=%.3f\n",
                toMillis(queue), toMillis(seek), toMillis(rotation),
                toMillis(transfer), toMillis(bus), toMillis(latency));

    std::sort(lats.begin(), lats.end());
    std::printf("  latency (ms): p50=%.3f p90=%.3f p99=%.3f "
                "max=%.3f mean=%.3f\n",
                percentileMs(lats, 50.0), percentileMs(lats, 90.0),
                percentileMs(lats, 99.0), toMillis(lats.back()),
                toMillis(latency) / static_cast<double>(n));

    // Fault attribution: which requests paid for media errors or
    // degraded-mode redirection (printed only when any did, so
    // fault-free traces keep their familiar output).
    if (faults || retries || degraded_reqs) {
        std::printf("  faults:     media-errors=%llu retries=%llu "
                    "faulted-reqs=%llu (%.1f%%)\n",
                    static_cast<unsigned long long>(faults),
                    static_cast<unsigned long long>(retries),
                    static_cast<unsigned long long>(faulted_reqs),
                    pct(faulted_reqs, n));
        std::printf("  degraded:   requests=%llu (%.1f%%) mean "
                    "lat(ms)=%.3f\n",
                    static_cast<unsigned long long>(degraded_reqs),
                    pct(degraded_reqs, n),
                    degraded_reqs
                        ? toMillis(degraded_latency) /
                              static_cast<double>(degraded_reqs)
                        : 0.0);
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    initLogLevelFromEnv();

    if (argc < 2) {
        std::fprintf(stderr, "usage: trace_summary FILE [FILE...]\n");
        return 2;
    }

    int rc = 0;
    for (int i = 1; i < argc; ++i)
        rc |= summarize(argv[i]);
    return rc;
}
