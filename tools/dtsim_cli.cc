/**
 * @file
 * Command-line experiment driver: build a workload (synthetic or one
 * of the paper's server models, or a saved trace file), run it
 * against a configured system, and print a full statistics report.
 *
 * Examples:
 *   dtsim_cli --workload synthetic --system for --file-kb 16
 *   dtsim_cli --workload web --scale 0.05 --system segm --hdc-kb 2048
 *   dtsim_cli --workload synthetic --save-trace /tmp/t.txt
 *   dtsim_cli --load-trace /tmp/t.txt --system nora
 *   dtsim_cli --workload web --system all --jobs 4
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/report.hh"
#include "core/sweep.hh"
#include "hdc/hdc_planner.hh"
#include "sim/logging.hh"
#include "stats/trace.hh"
#include "workload/server_models.hh"
#include "workload/synthetic.hh"

using namespace dtsim;

namespace {

void
usage()
{
    std::printf(
        "usage: dtsim_cli [options]\n"
        "workload:\n"
        "  --workload synthetic|web|proxy|file   (default synthetic)\n"
        "  --requests N        synthetic requests (default 10000)\n"
        "  --file-kb N         synthetic file size (default 16)\n"
        "  --zipf A            popularity coefficient\n"
        "  --writes P          synthetic write fraction [0,1]\n"
        "  --scale S           server-model request scale "
        "(default 0.05)\n"
        "  --load-trace PATH   replay a saved trace instead\n"
        "  --save-trace PATH   save the generated trace and exit\n"
        "system:\n"
        "  --system segm|block|nora|for|all      (default segm;\n"
        "                      'all' compares every system in one\n"
        "                      parallel sweep)\n"
        "  --jobs N            sweep threads for --system all\n"
        "                      (default DTSIM_JOBS, else all cores)\n"
        "  --hdc-kb N          per-disk HDC budget (default 0)\n"
        "  --hdc-policy pinned|victim            (default pinned)\n"
        "  --disks N           array size (default 8)\n"
        "  --unit-kb N         striping unit (default 128)\n"
        "  --streams N         concurrent streams (default 128)\n"
        "  --workers N         I/O thread pool (default streams)\n"
        "  --sched fcfs|look|clook|sstf          (default look)\n"
        "  --zones N           recording zones (default 0 = flat)\n"
        "  --seed N            RNG seed\n"
        "observability (docs/METRICS.md documents every name):\n"
        "  --stats-out FILE    write the full stats dump to FILE;\n"
        "                      with --system all, one file per kind\n"
        "                      (FILE.Segm, FILE.Block, FILE.No-RA,\n"
        "                      FILE.FOR)\n"
        "  --trace FILE        write one JSONL record per completed\n"
        "                      request (needs -DDTSIM_TRACE=ON);\n"
        "                      suffixed per kind under --system all\n"
        "  --stats-interval T  also snapshot stats every T ticks (ns)\n"
        "                      of simulated time\n"
        "  --log-level L       quiet|warn|inform|debug (also the\n"
        "                      DTSIM_LOG environment variable)\n");
}

const char*
arg(int argc, char** argv, int& i)
{
    if (i + 1 >= argc)
        fatal("missing value for %s", argv[i]);
    return argv[++i];
}

SystemKind
parseKind(const std::string& s)
{
    if (s == "segm")
        return SystemKind::Segm;
    if (s == "block")
        return SystemKind::Block;
    if (s == "nora")
        return SystemKind::NoRA;
    if (s == "for")
        return SystemKind::FOR;
    fatal("unknown system '%s'", s.c_str());
}

SchedulerKind
parseSched(const std::string& s)
{
    if (s == "fcfs")
        return SchedulerKind::FCFS;
    if (s == "look")
        return SchedulerKind::LOOK;
    if (s == "clook")
        return SchedulerKind::CLOOK;
    if (s == "sstf")
        return SchedulerKind::SSTF;
    fatal("unknown scheduler '%s'", s.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    std::string workload = "synthetic";
    std::string load_trace, save_trace;
    SystemConfig cfg;
    SyntheticParams sp;
    double scale = 0.05;
    std::string hdc_policy = "pinned";
    bool all_systems = false;
    unsigned jobs = 0;
    RunOptions opts;

    initLogLevelFromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--workload") {
            workload = arg(argc, argv, i);
        } else if (a == "--jobs") {
            jobs = static_cast<unsigned>(
                std::atoi(arg(argc, argv, i)));
        } else if (a == "--requests") {
            sp.numRequests = std::strtoull(arg(argc, argv, i),
                                           nullptr, 10);
        } else if (a == "--file-kb") {
            sp.fileSizeBytes =
                std::strtoull(arg(argc, argv, i), nullptr, 10) *
                kKiB;
        } else if (a == "--zipf") {
            sp.zipfAlpha = std::atof(arg(argc, argv, i));
        } else if (a == "--writes") {
            sp.writeProb = std::atof(arg(argc, argv, i));
        } else if (a == "--scale") {
            scale = std::atof(arg(argc, argv, i));
        } else if (a == "--load-trace") {
            load_trace = arg(argc, argv, i);
        } else if (a == "--save-trace") {
            save_trace = arg(argc, argv, i);
        } else if (a == "--system") {
            const std::string kind = arg(argc, argv, i);
            if (kind == "all")
                all_systems = true;
            else
                cfg.kind = parseKind(kind);
        } else if (a == "--hdc-kb") {
            cfg.hdcBytesPerDisk =
                std::strtoull(arg(argc, argv, i), nullptr, 10) *
                kKiB;
        } else if (a == "--hdc-policy") {
            hdc_policy = arg(argc, argv, i);
        } else if (a == "--disks") {
            cfg.disks = static_cast<unsigned>(
                std::atoi(arg(argc, argv, i)));
        } else if (a == "--unit-kb") {
            cfg.stripeUnitBytes =
                std::strtoull(arg(argc, argv, i), nullptr, 10) *
                kKiB;
        } else if (a == "--streams") {
            cfg.streams = static_cast<unsigned>(
                std::atoi(arg(argc, argv, i)));
        } else if (a == "--workers") {
            cfg.workers = static_cast<unsigned>(
                std::atoi(arg(argc, argv, i)));
        } else if (a == "--sched") {
            cfg.scheduler = parseSched(arg(argc, argv, i));
        } else if (a == "--zones") {
            cfg.disk.recordingZones = static_cast<unsigned>(
                std::atoi(arg(argc, argv, i)));
        } else if (a == "--stats-out") {
            opts.statsOutPath = arg(argc, argv, i);
        } else if (a == "--trace") {
            opts.tracePath = arg(argc, argv, i);
        } else if (a == "--stats-interval") {
            opts.statsIntervalTicks =
                std::strtoull(arg(argc, argv, i), nullptr, 10);
        } else if (a == "--log-level") {
            const char* name = arg(argc, argv, i);
            LogLevel level;
            if (!parseLogLevel(name, level))
                fatal("unknown log level '%s'", name);
            setLogLevel(level);
        } else if (a == "--seed") {
            cfg.seed = std::strtoull(arg(argc, argv, i), nullptr,
                                     10);
            sp.seed = cfg.seed;
        } else {
            usage();
            fatal("unknown option '%s'", a.c_str());
        }
    }

    if (hdc_policy == "victim")
        cfg.hdcPolicy = HdcPolicy::VictimCache;
    else if (hdc_policy != "pinned")
        fatal("unknown HDC policy '%s'", hdc_policy.c_str());

    const std::uint64_t capacity =
        cfg.disks * cfg.disk.totalBlocks();

    if (!opts.tracePath.empty() && !RequestTracer::compiledIn())
        fatal("--trace: tracing was compiled out; reconfigure with "
              "-DDTSIM_TRACE=ON");

    // Build or load the workload.
    Trace trace;
    std::unique_ptr<FileSystemImage> image;
    BufferCacheStats fs_stats;
    if (!load_trace.empty()) {
        trace = loadTrace(load_trace);
        std::printf("loaded %zu records from %s\n", trace.size(),
                    load_trace.c_str());
        if (cfg.kind == SystemKind::FOR || all_systems)
            fatal("FOR needs a file-system image; loaded traces "
                  "carry none (use --workload instead)");
    } else if (workload == "synthetic") {
        SyntheticWorkload w = makeSynthetic(sp, capacity);
        trace = std::move(w.trace);
        image = std::move(w.image);
    } else {
        ServerModelParams p;
        if (workload == "web")
            p = webServerParams(scale);
        else if (workload == "proxy")
            p = proxyServerParams(scale);
        else if (workload == "file")
            p = fileServerParams(scale);
        else
            fatal("unknown workload '%s'", workload.c_str());
        cfg.streams = p.streams;
        ServerWorkload w = makeServerWorkload(p, capacity);
        trace = std::move(w.trace);
        image = std::move(w.image);
        fs_stats = w.bufferCache;
        opts.fsStats = &fs_stats;
    }

    const TraceStats ts = computeStats(trace);
    std::printf("trace: %llu records, %llu blocks, %.1f%% writes, "
                "%llu jobs\n",
                static_cast<unsigned long long>(ts.records),
                static_cast<unsigned long long>(ts.blocks),
                ts.writeRecordFraction * 100.0,
                static_cast<unsigned long long>(ts.jobs));

    if (!save_trace.empty()) {
        saveTrace(trace, save_trace);
        std::printf("saved to %s\n", save_trace.c_str());
        return 0;
    }

    // FOR bitmaps and the HDC pin plan.
    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps;
    if (image)
        bitmaps = image->buildBitmaps(striping);

    std::vector<ArrayBlock> pinned;
    const std::vector<ArrayBlock>* pp = nullptr;
    if (cfg.hdcBytesPerDisk > 0 &&
        cfg.hdcPolicy == HdcPolicy::Pinned) {
        pinned = selectPinnedBlocks(trace, striping,
                                    hdcBlocksPerDisk(cfg));
        pp = &pinned;
    }

    if (all_systems) {
        // One job per system kind, executed as a parallel sweep.
        const SystemKind kinds[] = {SystemKind::Segm,
                                    SystemKind::Block,
                                    SystemKind::NoRA,
                                    SystemKind::FOR};
        std::vector<SweepJob> sweep;
        for (SystemKind k : kinds) {
            SweepJob job;
            job.cfg = cfg;
            job.cfg.kind = k;
            job.trace = &trace;
            job.bitmaps = bitmaps.empty() ? nullptr : &bitmaps;
            job.pinned = pp;
            // Each job gets its own output files, suffixed by kind.
            job.opts = opts;
            if (!opts.statsOutPath.empty())
                job.opts.statsOutPath = opts.statsOutPath + "." +
                                        systemKindName(k);
            if (!opts.tracePath.empty())
                job.opts.tracePath = opts.tracePath + "." +
                                     systemKindName(k);
            sweep.push_back(std::move(job));
        }
        const std::vector<RunResult> results = runSweep(sweep, jobs);

        std::printf("\n%-8s %-10s %-10s %-8s %-10s %-10s\n",
                    "system", "io(s)", "MB/s", "util", "cache-hit",
                    "lat(ms)");
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const RunResult& r = results[i];
            std::printf("%-8s %-10.3f %-10.2f %-8.3f %-10.3f "
                        "%-10.3f\n",
                        systemKindName(kinds[i]),
                        toSeconds(r.ioTime), r.throughputMBps,
                        r.diskUtilization, r.cacheHitRate,
                        r.meanLatencyMs);
        }
        return 0;
    }

    const RunResult r = runTrace(
        cfg, trace, opts, bitmaps.empty() ? nullptr : &bitmaps, pp);
    printReport(std::cout, cfg, r);
    if (!opts.statsOutPath.empty())
        inform("wrote stats dump to %s", opts.statsOutPath.c_str());
    if (!opts.tracePath.empty())
        inform("wrote %llu trace records to %s",
               static_cast<unsigned long long>(r.traceRecords),
               opts.tracePath.c_str());
    return 0;
}
