/**
 * @file
 * Command-line experiment driver over the typed parameter registry:
 * every knob is a registered `group.key` parameter settable from
 * config files (--config), direct overrides (--set), or the classic
 * sugar flags, and every run's outputs begin with an effective-config
 * header that --config reloads to reproduce the run.
 *
 * Examples:
 *   dtsim_cli --workload synthetic --system for --file-kb 16
 *   dtsim_cli --config examples/web_for_hdc.conf
 *   dtsim_cli --config run1_stats.txt --set system.scheduler=sstf
 *   dtsim_cli --sweep examples/sweeps/fig07_web_striping.conf
 *   dtsim_cli --workload web --system all --jobs 4
 *   dtsim_cli --list-params
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "config/config_file.hh"
#include "config/sweep_spec.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep_driver.hh"
#include "sim/logging.hh"
#include "stats/trace.hh"

using namespace dtsim;

namespace {

void
usage()
{
    std::printf(
        "usage: dtsim_cli [options]\n"
        "configuration (every knob is a registered parameter):\n"
        "  --config FILE       apply a key = value config file; stats\n"
        "                      dumps and traces reload too (their\n"
        "                      '#conf' header lines are parsed)\n"
        "  --set KEY=VALUE     set one parameter (repeatable; applied\n"
        "                      in command-line order)\n"
        "  --sweep FILE        expand the sweep grid in FILE ('sweep\n"
        "                      KEY = v1, v2, ...' axis lines over a\n"
        "                      base config), run every feasible point\n"
        "                      in parallel, and print a result table\n"
        "  --list-params       list every parameter with its type,\n"
        "                      default, and description\n"
        "  --param-docs-md     print the Markdown configuration\n"
        "                      reference (docs/CONFIG.md is this\n"
        "                      output, verbatim)\n"
        "workload sugar (sets the parameter in parentheses):\n"
        "  --workload K        synthetic|web|proxy|file\n"
        "                      (workload.kind)\n"
        "  --requests N        synthetic requests (synthetic.requests)\n"
        "  --file-kb N         synthetic file size in KiB\n"
        "                      (synthetic.file_bytes)\n"
        "  --zipf A            popularity coefficient\n"
        "                      (synthetic.zipf_alpha)\n"
        "  --writes P          synthetic write fraction [0,1]\n"
        "                      (synthetic.write_prob)\n"
        "  --scale S           server-model request scale\n"
        "                      (workload.scale)\n"
        "  --load-trace PATH   replay a saved trace instead\n"
        "  --save-trace PATH   save the generated trace and exit\n"
        "system sugar:\n"
        "  --system K          segm|block|nora|for (system.kind), or\n"
        "                      'all' to compare every kind in one\n"
        "                      parallel sweep\n"
        "  --hdc-kb N          per-disk HDC budget in KiB\n"
        "                      (system.hdc_bytes_per_disk)\n"
        "  --hdc-policy P      pinned|victim (system.hdc_policy)\n"
        "  --disks N           array size (system.disks)\n"
        "  --unit-kb N         striping unit in KiB\n"
        "                      (system.stripe_unit_bytes)\n"
        "  --streams N         concurrent streams (system.streams)\n"
        "  --workers N         I/O thread pool, 0 = streams\n"
        "                      (system.workers)\n"
        "  --sched S           fcfs|look|clook|sstf (system.scheduler)\n"
        "  --zones N           recording zones, 0 = flat\n"
        "                      (disk.recording_zones)\n"
        "  --seed N            RNG seed (system.seed and\n"
        "                      synthetic.seed)\n"
        "observability (docs/METRICS.md documents every stat name):\n"
        "  --stats-out FILE    write the full stats dump to FILE\n"
        "                      (run.stats_out); under a sweep each\n"
        "                      point writes FILE.<key-value>[...], plus\n"
        "                      non-default fault.* params when a fault\n"
        "                      scenario is configured\n"
        "  --trace FILE        one sampled record per completed\n"
        "                      request (run.trace; binary by default,\n"
        "                      see --trace-format and\n"
        "                      docs/OBSERVABILITY.md); suffixed per\n"
        "                      point under a sweep\n"
        "  --trace-sample P    record each completed request with\n"
        "                      probability P from a dedicated RNG\n"
        "                      stream (trace.sample; default 1 =\n"
        "                      every request, seed via trace.seed)\n"
        "  --trace-format F    trace encoding: binary|jsonl\n"
        "                      (trace.format; trace_summary reads\n"
        "                      both and converts with --to-jsonl)\n"
        "  --stats-interval T  also snapshot stats every T ticks (ns)\n"
        "                      (run.stats_interval_ticks)\n"
        "  --stats-stream FILE append framed live stat snapshots to\n"
        "                      FILE/FIFO for `tail -f` (stats.stream;\n"
        "                      cadence stats.stream_interval_ticks,\n"
        "                      default --stats-interval); suffixed\n"
        "                      per point under a sweep\n"
        "  --jobs N            sweep threads (default DTSIM_JOBS,\n"
        "                      else all cores)\n"
        "  --jobs-intra N      intra-run kernel threads sharding one\n"
        "                      simulation per disk; results are\n"
        "                      tick-identical at any setting\n"
        "                      (run.jobs_intra; 1 = serial kernel,\n"
        "                      0 = DTSIM_JOBS_INTRA else all cores)\n"
        "  --log-level L       quiet|warn|inform|debug (also the\n"
        "                      DTSIM_LOG environment variable)\n"
        "docs/CONFIG.md is the full parameter reference.\n");
}

const char*
arg(int argc, char** argv, int& i)
{
    if (i + 1 >= argc)
        fatal("missing value for %s", argv[i]);
    return argv[++i];
}

/** Parse a sugar-flag value with the checked parser; fatal on junk. */
template <typename T>
T
parseFlag(const char* flag, const std::string& text)
{
    T v{};
    std::string err;
    if (!config::parseValue(text, v, err))
        fatal("%s: %s", flag, err.c_str());
    return v;
}

/** Set a registered parameter; fatal with the registry's error. */
void
setParam(config::ParamRegistry& reg, const std::string& key,
         const std::string& value)
{
    std::string err;
    if (!reg.set(key, value, err))
        fatal("%s", err.c_str());
}

void
listParams(const config::ParamRegistry& reg)
{
    for (const config::ParamEntry& e : reg.entries()) {
        std::printf("%-32s %s  (default %s)\n    %s\n",
                    e.name.c_str(), e.type.c_str(),
                    e.defaultValue.c_str(), e.doc.c_str());
    }
}

/** Escape '|' for use inside a Markdown table cell. */
std::string
mdEscape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '|')
            out += "\\|";
        else
            out += c;
    }
    return out;
}

void
paramDocsMarkdown(const config::ParamRegistry& reg)
{
    std::printf(
        "# dtsim configuration reference\n"
        "\n"
        "<!-- Generated by `dtsim_cli --param-docs-md`. Do not edit\n"
        "     by hand; regenerate after changing registered\n"
        "     parameters (src/config/sim_config.cc). -->\n"
        "\n"
        "Every knob of the simulator is a typed, registered parameter\n"
        "`group.key`, declared once in `src/config/sim_config.cc` with\n"
        "its type, default, and documentation. The same registry\n"
        "drives `--set`, config files, sweeps, `--list-params`, this\n"
        "reference, and the effective-config header that starts every\n"
        "stats dump and request trace.\n"
        "\n"
        "## Config files\n"
        "\n"
        "`dtsim_cli --config FILE` applies one `key = value`\n"
        "assignment per line; blank lines and `#` comments are\n"
        "ignored. Unknown keys, malformed values, and trailing junk\n"
        "are errors with `file:line` positions. `--set KEY=VALUE`\n"
        "sets a single parameter; `--config` and `--set` apply in\n"
        "command-line order, later wins.\n"
        "\n"
        "Stats dumps and request traces begin with the run's\n"
        "effective configuration as `#conf key = value` lines. A file\n"
        "containing such lines loads in *embedded* mode: only the\n"
        "`#conf` lines are parsed, so `--config results_stats.txt`\n"
        "reproduces the run that wrote the file, bit for bit.\n"
        "\n"
        "## Sweeps\n"
        "\n"
        "`dtsim_cli --sweep FILE` reads a config file that may also\n"
        "contain axis lines:\n"
        "\n"
        "```\n"
        "workload.kind = web\n"
        "sweep system.stripe_unit_bytes = 4096, 8192, 16384\n"
        "sweep system.kind = segm, for\n"
        "```\n"
        "\n"
        "Axes expand as a cartesian product (first axis slowest) and\n"
        "every feasible point runs through the parallel sweep runner.\n"
        "Points that fail cross-parameter validation (for example an\n"
        "HDC budget that leaves no read-ahead cache memory) are\n"
        "reported and skipped rather than aborting the sweep. The\n"
        "shipped figure sweeps live in `examples/sweeps/`.\n"
        "\n"
        "## Validation\n"
        "\n"
        "Before running, the full configuration is cross-checked\n"
        "(stripe unit a multiple of the block size, HDC + FOR bitmap\n"
        "within the controller cache, mirrored arrays even-sized,\n"
        "...). Violations are reported together, with the offending\n"
        "keys named.\n"
        "\n"
        "## Parameters\n");

    std::string group;
    for (const config::ParamEntry& e : reg.entries()) {
        const std::string g = e.name.substr(0, e.name.find('.'));
        if (g != group) {
            group = g;
            std::printf("\n### %s.*\n\n", group.c_str());
            std::printf("| Key | Type | Default | Description |\n"
                        "|---|---|---|---|\n");
        }
        std::printf("| `%s` | `%s` | `%s` | %s |\n", e.name.c_str(),
                    mdEscape(e.type).c_str(),
                    e.defaultValue.empty()
                        ? "(empty)"
                        : mdEscape(e.defaultValue).c_str(),
                    mdEscape(e.doc).c_str());
    }
}

/** A value made safe for use inside a file name. */
std::string
fileToken(const std::string& v)
{
    std::string out;
    for (char c : v) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        out += ok ? c : '-';
    }
    return out;
}

/**
 * Output-file suffix of a sweep point: one ".key-value" element per
 * coordinate (leaf key only), so files from different axes never
 * collide even when two axes share a value. When the point carries a
 * fault scenario, the non-default fault.* parameters are appended
 * too, disambiguating per-scenario outputs of otherwise identical
 * coordinates (e.g. `--system all` under a disk-kill script).
 */
std::string
coordSuffix(const SweepPoint& p)
{
    std::string s;
    for (const auto& kv : p.coords) {
        const std::size_t dot = kv.first.rfind('.');
        s += "." +
             kv.first.substr(dot == std::string::npos ? 0 : dot + 1) +
             "-" + fileToken(kv.second);
    }
    if (p.cfg.system.fault.enabled()) {
        // Two registries: one bound to the point (current values),
        // one to a default config (true defaults); only deviations
        // that are not already sweep coordinates are appended.
        SimulationConfig cur_cfg = p.cfg;
        SimulationConfig def_cfg;
        config::ParamRegistry cur, def;
        bindParams(cur, cur_cfg);
        bindParams(def, def_cfg);
        const std::vector<config::ParamEntry>& defs = def.entries();
        const std::vector<config::ParamEntry>& curs = cur.entries();
        for (std::size_t i = 0;
             i < curs.size() && i < defs.size(); ++i) {
            const config::ParamEntry& e = curs[i];
            if (e.name.compare(0, 6, "fault.") != 0)
                continue;
            bool is_axis = false;
            for (const auto& kv : p.coords)
                is_axis = is_axis || kv.first == e.name;
            if (is_axis)
                continue;
            const std::string v = e.get();
            if (v == defs[i].get())
                continue;
            s += "." + e.name.substr(6) + "-" + fileToken(v);
        }
    }
    return s;
}

/** Human label of a sweep point: "key=value key=value". */
std::string
coordLabel(const SweepPoint& p)
{
    std::string s;
    for (const auto& kv : p.coords) {
        if (!s.empty())
            s += " ";
        const std::size_t dot = kv.first.rfind('.');
        s += kv.first.substr(dot == std::string::npos ? 0 : dot + 1) +
             "=" + kv.second;
    }
    return s.empty() ? "(base)" : s;
}

int
runSweepMode(const SweepSpec& spec, unsigned jobs)
{
    std::string err;
    std::vector<SweepPoint> points = expandSweep(spec, err);
    if (points.empty())
        fatal("sweep: %s",
              err.empty() ? "empty grid" : err.c_str());

    // Give each point its own output files, suffixed by coordinates.
    for (SweepPoint& p : points) {
        if (!p.cfg.output.statsOut.empty())
            p.cfg.output.statsOut += coordSuffix(p);
        if (!p.cfg.output.trace.empty())
            p.cfg.output.trace += coordSuffix(p);
        if (!p.cfg.output.stream.path.empty())
            p.cfg.output.stream.path += coordSuffix(p);
    }

    std::size_t label_w = 8;
    for (const SweepPoint& p : points)
        label_w = std::max(label_w, coordLabel(p).size());

    const std::vector<RunResult> results =
        runSweepPoints(points, jobs);

    std::printf("\n%-*s %-10s %-10s %-8s %-10s %-10s\n",
                static_cast<int>(label_w), "point", "io(s)", "MB/s",
                "util", "cache-hit", "lat(ms)");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string label = coordLabel(points[i]);
        if (!points[i].feasible) {
            std::printf("%-*s infeasible: %s\n",
                        static_cast<int>(label_w), label.c_str(),
                        points[i].whyNot.c_str());
            continue;
        }
        const RunResult& r = results[i];
        std::printf("%-*s %-10.3f %-10.2f %-8.3f %-10.3f %-10.3f\n",
                    static_cast<int>(label_w), label.c_str(),
                    toSeconds(r.ioTime), r.throughputMBps,
                    r.diskUtilization, r.cacheHitRate,
                    r.meanLatencyMs);
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    SimulationConfig sim;
    config::ParamRegistry reg;
    bindParams(reg, sim);

    std::string load_trace, save_trace;
    SweepSpec sweep;
    bool have_sweep = false;
    bool all_systems = false;
    unsigned jobs = 0;

    initLogLevelFromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list-params") {
            listParams(reg);
            return 0;
        } else if (a == "--param-docs-md") {
            paramDocsMarkdown(reg);
            return 0;
        } else if (a == "--config") {
            const char* path = arg(argc, argv, i);
            std::string err;
            if (!config::loadConfigFile(path, reg, err))
                fatal("%s", err.c_str());
        } else if (a == "--set") {
            const std::string kv = arg(argc, argv, i);
            std::string key, value, err;
            if (!config::splitAssignment(kv, key, value, err))
                fatal("--set %s: %s", kv.c_str(), err.c_str());
            setParam(reg, key, value);
        } else if (a == "--sweep") {
            // Applied at this position: the file's base assignments
            // land now, so later --set / sugar flags override them.
            const char* path = arg(argc, argv, i);
            sweep.base = sim;
            std::string err;
            if (!loadSweepFile(path, sweep, err))
                fatal("%s", err.c_str());
            sim = sweep.base;
            have_sweep = true;
        } else if (a == "--workload") {
            setParam(reg, "workload.kind", arg(argc, argv, i));
        } else if (a == "--jobs") {
            jobs = parseFlag<unsigned>("--jobs", arg(argc, argv, i));
        } else if (a == "--jobs-intra") {
            setParam(reg, "run.jobs_intra", arg(argc, argv, i));
        } else if (a == "--requests") {
            setParam(reg, "synthetic.requests", arg(argc, argv, i));
        } else if (a == "--file-kb") {
            const std::uint64_t kb = parseFlag<std::uint64_t>(
                "--file-kb", arg(argc, argv, i));
            setParam(reg, "synthetic.file_bytes",
                     std::to_string(kb * kKiB));
        } else if (a == "--zipf") {
            setParam(reg, "synthetic.zipf_alpha", arg(argc, argv, i));
        } else if (a == "--writes") {
            setParam(reg, "synthetic.write_prob", arg(argc, argv, i));
        } else if (a == "--scale") {
            setParam(reg, "workload.scale", arg(argc, argv, i));
        } else if (a == "--load-trace") {
            load_trace = arg(argc, argv, i);
        } else if (a == "--save-trace") {
            save_trace = arg(argc, argv, i);
        } else if (a == "--system") {
            const std::string kind = arg(argc, argv, i);
            if (kind == "all")
                all_systems = true;
            else
                setParam(reg, "system.kind", kind);
        } else if (a == "--hdc-kb") {
            const std::uint64_t kb = parseFlag<std::uint64_t>(
                "--hdc-kb", arg(argc, argv, i));
            setParam(reg, "system.hdc_bytes_per_disk",
                     std::to_string(kb * kKiB));
        } else if (a == "--hdc-policy") {
            setParam(reg, "system.hdc_policy", arg(argc, argv, i));
        } else if (a == "--disks") {
            setParam(reg, "system.disks", arg(argc, argv, i));
        } else if (a == "--unit-kb") {
            const std::uint64_t kb = parseFlag<std::uint64_t>(
                "--unit-kb", arg(argc, argv, i));
            setParam(reg, "system.stripe_unit_bytes",
                     std::to_string(kb * kKiB));
        } else if (a == "--streams") {
            setParam(reg, "system.streams", arg(argc, argv, i));
        } else if (a == "--workers") {
            setParam(reg, "system.workers", arg(argc, argv, i));
        } else if (a == "--sched") {
            setParam(reg, "system.scheduler", arg(argc, argv, i));
        } else if (a == "--zones") {
            setParam(reg, "disk.recording_zones", arg(argc, argv, i));
        } else if (a == "--stats-out") {
            setParam(reg, "run.stats_out", arg(argc, argv, i));
        } else if (a == "--trace") {
            setParam(reg, "run.trace", arg(argc, argv, i));
        } else if (a == "--trace-sample") {
            setParam(reg, "trace.sample", arg(argc, argv, i));
        } else if (a == "--trace-format") {
            setParam(reg, "trace.format", arg(argc, argv, i));
        } else if (a == "--stats-interval") {
            setParam(reg, "run.stats_interval_ticks",
                     arg(argc, argv, i));
        } else if (a == "--stats-stream") {
            setParam(reg, "stats.stream", arg(argc, argv, i));
        } else if (a == "--log-level") {
            const char* name = arg(argc, argv, i);
            LogLevel level;
            if (!parseLogLevel(name, level))
                fatal("unknown log level '%s'", name);
            setLogLevel(level);
        } else if (a == "--seed") {
            const char* seed = arg(argc, argv, i);
            setParam(reg, "system.seed", seed);
            setParam(reg, "synthetic.seed", seed);
        } else {
            fatal("unknown option '%s' (--help lists options; use "
                  "--set KEY=VALUE for registered parameters)",
                  a.c_str());
        }
    }

    if (!sim.output.trace.empty() && !RequestTracer::compiledIn())
        fatal("--trace / run.trace: tracing was compiled out; "
              "reconfigure with -DDTSIM_TRACE=ON");

    // Sweep modes: an explicit sweep file, or --system all expanded
    // to a one-axis sweep over the system kind.
    if (have_sweep || all_systems) {
        if (!load_trace.empty())
            fatal("sweeps generate their workloads; --load-trace "
                  "only applies to single runs");
        sweep.base = sim;
        if (all_systems)
            sweep.axes.push_back(
                {"system.kind", {"segm", "block", "nora", "for"}});
        return runSweepMode(sweep, jobs);
    }

    // Replay of a saved trace: no workload build, no image, so FOR
    // (which needs layout bitmaps) is unavailable.
    if (!load_trace.empty()) {
        const std::vector<std::string> errs = validateConfig(sim);
        if (!errs.empty())
            fatal("invalid configuration: %s", errs.front().c_str());
        if (sim.system.kind == SystemKind::FOR)
            fatal("FOR needs a file-system image; loaded traces "
                  "carry none (use --workload instead)");
        const Trace trace = loadTrace(load_trace);
        std::printf("loaded %zu records from %s\n", trace.size(),
                    load_trace.c_str());

        Experiment replay(sim);
        replay.replay(trace);
        const RunResult r = replay.run();
        printReport(std::cout, sim.system, r);
        return 0;
    }

    Experiment exp(sim);

    const TraceStats ts = computeStats(exp.trace());
    std::printf("trace: %llu records, %llu blocks, %.1f%% writes, "
                "%llu jobs\n",
                static_cast<unsigned long long>(ts.records),
                static_cast<unsigned long long>(ts.blocks),
                ts.writeRecordFraction * 100.0,
                static_cast<unsigned long long>(ts.jobs));

    if (!save_trace.empty()) {
        saveTrace(exp.trace(), save_trace);
        std::printf("saved to %s\n", save_trace.c_str());
        return 0;
    }

    const RunResult r = exp.run();
    printReport(std::cout, exp.config().system, r);
    if (!exp.runOptions().stats.path().empty())
        inform("wrote stats dump to %s",
               exp.runOptions().stats.path().c_str());
    if (!exp.runOptions().tracePath.empty())
        inform("wrote %llu trace records to %s",
               static_cast<unsigned long long>(r.traceRecords),
               exp.runOptions().tracePath.c_str());
    return 0;
}
