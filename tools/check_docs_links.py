#!/usr/bin/env python3
"""Check that repo documentation does not reference missing files.

Two classes of reference are verified across every tracked *.md file:

  1. Relative markdown links: [text](path) and [text](path#anchor).
     External links (a URL scheme) and pure in-page anchors (#...)
     are skipped; everything else must resolve, relative to the file
     containing the link, to an existing file or directory.

  2. Inline-code path references: `docs/FOO.md`, `tools/bar.py`,
     `src/x/y.hh` and the like. Only backticked tokens that start
     with a known top-level directory (or a shipped root file) and
     contain no glob/placeholder characters are checked, so prose
     like `run.stats_out` or `--trace FILE` never false-positives.

Run from anywhere inside the repository:

    python3 tools/check_docs_links.py

Exits non-zero listing every broken reference. Stdlib only.
"""

import os
import re
import sys

# Directories whose backticked mentions are treated as file paths.
PATH_PREFIXES = ("docs/", "examples/", "src/", "tools/", "tests/",
                 "bench/", ".github/")

# Backticked root-level files worth checking by exact name.
ROOT_FILES = ("README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md",
              "EXPERIMENTS.md", "PAPER.md", "CMakeLists.txt")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
SCHEME = re.compile(r"^[a-z][a-z0-9+.-]*:")

# A checkable path token: no spaces, globs, or template placeholders.
CLEAN_PATH = re.compile(r"^[A-Za-z0-9_./-]+$")


def repo_root():
    d = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(d)


def md_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in (".git", "build", "related")]
        for f in filenames:
            # ISSUE.md is a transient work ticket, not documentation;
            # it may cite files the ticket has yet to create.
            if f.endswith(".md") and f != "ISSUE.md":
                out.append(os.path.join(dirpath, f))
    return sorted(out)


def strip_fences(text):
    """Drop fenced code blocks for link scanning (markdown links in
    shell examples are not links) but return them separately so the
    path-token pass can still inspect them."""
    prose, fences = [], []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        (fences if in_fence else prose).append(line)
    return "\n".join(prose), "\n".join(fences)


def check_file(path, root, errors):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    prose, fences = strip_fences(text)
    base = os.path.dirname(path)
    rel = os.path.relpath(path, root)

    for m in MD_LINK.finditer(prose):
        target = m.group(1).split("#", 1)[0]
        if not target or SCHEME.match(m.group(1)):
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            errors.append("%s: broken link: %s" % (rel, m.group(1)))

    for m in CODE_SPAN.finditer(prose + "\n" + fences):
        token = m.group(1).strip()
        if not CLEAN_PATH.match(token):
            continue
        if not (token.startswith(PATH_PREFIXES) or token in ROOT_FILES):
            continue
        full = os.path.join(root, token)
        # `bench/fig07_web_striping` and friends name build targets;
        # they count as resolved when the matching source file exists.
        if not (os.path.exists(full) or
                any(os.path.exists(full + ext)
                    for ext in (".cc", ".cpp", ".py", ".sh"))):
            errors.append("%s: missing path reference: %s"
                          % (rel, token))


def main():
    root = repo_root()
    errors = []
    files = md_files(root)
    for path in files:
        check_file(path, root, errors)
    if errors:
        for e in errors:
            print(e)
        print("%d broken doc reference(s) in %d file(s) scanned"
              % (len(errors), len(files)), file=sys.stderr)
        return 1
    print("checked %d markdown files: all references resolve"
          % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
